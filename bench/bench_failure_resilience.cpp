// Q4 — "Can a query always proceed despite the failures?" (paper §3.3).
// Compares the planned (overcollected) execution against an m = 0 baseline
// across actual failure probabilities. Expected shape: without
// overcollection the success rate collapses quickly with p; with the
// planned m it stays >= the target up to the presumed p.

#include "bench_util.h"

using namespace edgelet;

namespace {

struct Cell {
  int success = 0;
  int trials = 0;
};

Cell RunTrials(double presumed, double actual, bool overcollect,
               int trials) {
  Cell cell;
  for (int trial = 0; trial < trials; ++trial) {
    uint64_t seed = 9000 + trial * 13 + static_cast<uint64_t>(actual * 100);
    core::EdgeletFramework fw(bench::StandardFleet(400, 60, seed));
    if (!fw.Init().ok()) continue;
    query::Query q = bench::SurveyQuery(80, seed);
    core::PrivacyConfig privacy;
    privacy.max_tuples_per_edgelet = 20;  // n = 4
    resilience::ResilienceConfig resilience{overcollect ? presumed : 0.0,
                                            overcollect ? 0.99 : 0.5};
    auto d = fw.Plan(q, privacy, resilience,
                     exec::Strategy::kOvercollection);
    if (!d.ok()) continue;
    exec::ExecutionConfig ec;
    ec.collection_window = 60 * kSecond;
    ec.deadline = 3 * kMinute;
    ec.inject_failures = true;
    ec.failure_probability = actual;
    ec.seed = seed + 5;
    auto report = fw.Execute(*d, ec);
    if (!report.ok()) continue;
    ++cell.trials;
    if (report->success) ++cell.success;
  }
  return cell;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Q4: success rate with vs without overcollection",
      "Expected: m=0 baseline collapses as p grows; the overcollected plan "
      "(presume p=0.2, target 0.99) holds its success rate through the "
      "presumed regime.");

  const int kTrials = 12;
  const double kPresumed = 0.20;

  std::printf("%10s %18s %24s\n", "actual p", "m=0 baseline",
              "overcollected (m planned)");
  bench::PrintRule(60);
  for (double actual : {0.0, 0.05, 0.10, 0.15, 0.20, 0.30}) {
    Cell base = RunTrials(kPresumed, actual, /*overcollect=*/false, kTrials);
    Cell over = RunTrials(kPresumed, actual, /*overcollect=*/true, kTrials);
    std::printf("%10.2f %12d%% (%2d) %18d%% (%2d)\n", actual,
                base.trials ? 100 * base.success / base.trials : 0,
                base.trials,
                over.trials ? 100 * over.success / over.trials : 0,
                over.trials);
  }
  std::printf("\n(N trials in parentheses; plans: n=4, quota=20, presumed "
              "p=%.2f for the overcollected column)\n", kPresumed);
  return 0;
}
