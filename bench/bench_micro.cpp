// MICRO — google-benchmark microbenchmarks for the substrate hot paths:
// crypto (the cost every sealed message pays), serialization, aggregate
// merging, the DES event loop, Lloyd steps, and Hungarian matching.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "crypto/aead.h"
#include "crypto/sha256.h"
#include "data/generator.h"
#include "ml/kmeans.h"
#include "ml/metrics.h"
#include "net/simulator.h"
#include "query/groupby.h"
#include "tee/enclave.h"

namespace edgelet {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(state.range(0), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AeadSeal(benchmark::State& state) {
  crypto::Key256 key{};
  key[0] = 1;
  Bytes payload(state.range(0), 0x42);
  Bytes aad(28, 0x11);
  uint64_t seq = 0;
  for (auto _ : state) {
    auto nonce = crypto::NonceFromSequence(7, seq++);
    benchmark::DoNotOptimize(crypto::AeadSeal(key, nonce, aad, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(128)->Arg(1024)->Arg(8192);

void BM_AeadOpen(benchmark::State& state) {
  crypto::Key256 key{};
  key[0] = 1;
  Bytes payload(state.range(0), 0x42);
  Bytes aad(28, 0x11);
  auto nonce = crypto::NonceFromSequence(7, 1);
  Bytes sealed = crypto::AeadSeal(key, nonce, aad, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::AeadOpen(key, nonce, aad, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(128)->Arg(1024)->Arg(8192);

// The allocation-free variant actually used on the message path: seal into
// a reused scratch buffer. The delta against BM_AeadSeal is the per-message
// allocation + copy overhead of the one-shot API.
void BM_AeadSealInto(benchmark::State& state) {
  crypto::Key256 key{};
  key[0] = 1;
  Bytes payload(state.range(0), 0x42);
  Bytes aad(28, 0x11);
  Bytes scratch;
  uint64_t seq = 0;
  for (auto _ : state) {
    auto nonce = crypto::NonceFromSequence(7, seq++);
    crypto::AeadSealInto(key, nonce, aad.data(), aad.size(), payload.data(),
                         payload.size(), &scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSealInto)->Arg(128)->Arg(1024)->Arg(8192);

// Replica fan-out as the actors do it: one encoded plaintext sealed for
// each of 8 recipients through the enclave (pairwise-key cache + scratch
// reuse). Bytes/sec counts every sealed copy produced.
void BM_SealFanout(benchmark::State& state) {
  constexpr int kRecipients = 8;
  tee::TrustAuthority authority(42);
  tee::Enclave sender(1, "bench-code", &authority);
  if (!sender.Provision().ok()) {
    state.SkipWithError("provision failed");
    return;
  }
  Bytes payload(state.range(0), 0x42);
  Bytes aad(28, 0x11);
  Bytes scratch;
  uint64_t seq = 0;
  for (auto _ : state) {
    for (int peer = 0; peer < kRecipients; ++peer) {
      (void)sender.SealForInto(2 + peer, seq, aad.data(), aad.size(),
                               payload, &scratch);
      benchmark::DoNotOptimize(scratch.data());
    }
    ++seq;
  }
  state.SetBytesProcessed(state.iterations() * kRecipients *
                          state.range(0));
}
BENCHMARK(BM_SealFanout)->Arg(1024)->Arg(8192);

void BM_TableSerialize(benchmark::State& state) {
  data::HealthDataParams params;
  params.num_individuals = state.range(0);
  data::Table table = data::GenerateHealthData(params, 1);
  for (auto _ : state) {
    Writer w;
    table.Serialize(&w);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableSerialize)->Arg(10)->Arg(100)->Arg(1000);

void BM_TableDeserialize(benchmark::State& state) {
  data::HealthDataParams params;
  params.num_individuals = state.range(0);
  data::Table table = data::GenerateHealthData(params, 1);
  Writer w;
  table.Serialize(&w);
  for (auto _ : state) {
    Reader r(w.data());
    benchmark::DoNotOptimize(data::Table::Deserialize(&r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableDeserialize)->Arg(10)->Arg(100)->Arg(1000);

void BM_GroupByCompute(benchmark::State& state) {
  data::HealthDataParams params;
  params.num_individuals = state.range(0);
  data::Table table = data::GenerateHealthData(params, 1);
  query::GroupBySpec spec{
      {"region", "sex"},
      {{query::AggregateFunction::kCount, "*"},
       {query::AggregateFunction::kAvg, "bmi"},
       {query::AggregateFunction::kVariance, "systolic_bp"}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::GroupedAggregation::Compute(table, spec));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByCompute)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GroupByMerge(benchmark::State& state) {
  data::HealthDataParams params;
  params.num_individuals = 1000;
  data::Table table = data::GenerateHealthData(params, 1);
  query::GroupBySpec spec{
      {"region", "sex"},
      {{query::AggregateFunction::kCount, "*"},
       {query::AggregateFunction::kAvg, "bmi"}}};
  auto partial = query::GroupedAggregation::Compute(table, spec);
  for (auto _ : state) {
    query::GroupedAggregation acc;
    for (int i = 0; i < 8; ++i) {
      benchmark::DoNotOptimize(acc.Merge(*partial));
    }
  }
}
BENCHMARK(BM_GroupByMerge);

// DES throughput: the events_per_sec counter is the headline number for
// the event-queue rework (slab + generation tombstones vs hash-set
// pending tracking).
void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    net::Simulator sim(1);
    sim.ReserveEvents(state.range(0));
    uint64_t count = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.ScheduleAt(sim.rng().NextBelow(1000000),
                     [&count]() { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorEvents)->Arg(1000)->Arg(10000)->Arg(100000);

// Steady-state event churn: every executed event schedules a successor
// (heartbeats, churn transitions), so slots and queue storage are
// recycled rather than grown.
void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    net::Simulator sim(1);
    const uint64_t target = state.range(0);
    uint64_t count = 0;
    std::function<void()> tick = [&]() {
      if (++count < target) sim.ScheduleAfter(10, tick);
    };
    for (int i = 0; i < 64; ++i) sim.ScheduleAt(i, tick);
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorSelfScheduling)->Arg(10000)->Arg(100000);

// Schedule + cancel half the events (timeout patterns: most deadlines are
// cancelled before they fire).
void BM_SimulatorScheduleCancel(benchmark::State& state) {
  std::vector<uint64_t> ids;
  for (auto _ : state) {
    net::Simulator sim(1);
    sim.ReserveEvents(state.range(0));
    uint64_t count = 0;
    ids.clear();
    for (int i = 0; i < state.range(0); ++i) {
      ids.push_back(sim.ScheduleAt(sim.rng().NextBelow(1000000),
                                   [&count]() { ++count; }));
    }
    for (size_t i = 0; i < ids.size(); i += 2) sim.Cancel(ids[i]);
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorScheduleCancel)->Arg(10000);

// Writer reuse on the message path: Reset() keeps the allocation, so a
// stream of encodes settles into zero allocations.
void BM_WriterReuse(benchmark::State& state) {
  data::HealthDataParams params;
  params.num_individuals = 100;
  data::Table table = data::GenerateHealthData(params, 1);
  Writer w;
  for (auto _ : state) {
    w.Reset();
    table.Serialize(&w);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(state.iterations() * w.size());
}
BENCHMARK(BM_WriterReuse);

void BM_VarintEncode(benchmark::State& state) {
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 1024; ++i) {
    // Mirror wire reality: mostly small lengths/counters, some large.
    values.push_back(i % 8 == 0 ? rng.NextU64() : rng.NextBelow(128));
  }
  Writer w;
  for (auto _ : state) {
    w.Reset();
    for (uint64_t v : values) w.PutVarint(v);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintEncode);

void BM_TableConcatMove(benchmark::State& state) {
  data::HealthDataParams params;
  params.num_individuals = state.range(0);
  data::Table source = data::GenerateHealthData(params, 1);
  for (auto _ : state) {
    state.PauseTiming();
    data::Table chunk = source;  // fresh copy to steal from
    data::Table sink(source.schema());
    state.ResumeTiming();
    benchmark::DoNotOptimize(sink.Concat(std::move(chunk)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableConcatMove)->Arg(1000);

void BM_LloydStep(benchmark::State& state) {
  Rng rng(1);
  ml::Matrix points;
  for (int i = 0; i < state.range(0); ++i) {
    points.push_back({rng.NextGaussian(), rng.NextGaussian(),
                      rng.NextGaussian(), rng.NextGaussian()});
  }
  auto init = ml::KMeansPlusPlusInit(points, 8, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::RunLloydStep(points, *init));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LloydStep)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Hungarian(benchmark::State& state) {
  Rng rng(2);
  const int n = state.range(0);
  ml::Matrix cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::HungarianAssign(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace edgelet

BENCHMARK_MAIN();
