// Q3 — "Is privacy protected whatever the attack?" (paper §3.3).
// Quantifies, under the sealed-glass threat model, what compromising one
// edgelet reveals: raw tuples (bounded by horizontal partitioning) and
// co-resident attributes (bounded by vertical partitioning). Also audits
// the *observed* exposure counted inside enclaves during a real execution
// against the plan-time bound.

#include "bench_util.h"

using namespace edgelet;

int main() {
  bench::PrintHeader(
      "Q3: per-edgelet exposure vs partitioning parameters",
      "Expected: tuples/edgelet ~ C/n (horizontal); separated pairs never "
      "co-reside (vertical); aggregates-only operators expose nothing.");

  const uint64_t kC = 240;
  core::EdgeletFramework fw(bench::StandardFleet(500, 200, 5));
  if (!fw.Init().ok()) return 1;

  std::printf("Horizontal sweep (no vertical constraints), C=%llu\n",
              static_cast<unsigned long long>(kC));
  std::printf("%6s %6s %14s %16s %12s\n", "n", "m", "tuples/edgelet",
              "snapshot frac", "cells/edglt");
  bench::PrintRule(60);
  for (uint64_t cap : {240, 120, 60, 30, 15}) {
    core::PrivacyConfig privacy;
    privacy.max_tuples_per_edgelet = cap;
    auto d = fw.Plan(bench::SurveyQuery(kC), privacy, {0.05, 0.99},
                     exec::Strategy::kOvercollection);
    if (!d.ok()) {
      std::printf("  (cap=%llu infeasible: %s)\n",
                  static_cast<unsigned long long>(cap),
                  d.status().ToString().c_str());
      continue;
    }
    auto e = core::Planner::Exposure(*d);
    std::printf("%6d %6d %14llu %15.3f%% %12llu\n", d->n, d->m,
                static_cast<unsigned long long>(e.max_tuples_per_edgelet),
                100 * e.worst_snapshot_fraction,
                static_cast<unsigned long long>(e.max_cells_per_edgelet));
  }

  std::printf("\nVertical benefit: widest attribute set on any processor\n");
  std::printf("%-40s %8s %10s\n", "constraints", "vgroups", "max attrs");
  bench::PrintRule(60);
  struct VCase {
    const char* label;
    std::vector<privacy::SeparationConstraint> separation;
  };
  for (const VCase& vc : std::vector<VCase>{
           {"none", {}},
           {"separate {region,sex}", {{"region", "sex"}}},
       }) {
    core::PrivacyConfig privacy;
    privacy.max_tuples_per_edgelet = 60;
    privacy.separation = vc.separation;
    auto d = fw.Plan(bench::SurveyQuery(kC), privacy, {0.05, 0.99},
                     exec::Strategy::kOvercollection);
    if (!d.ok()) continue;
    size_t widest = 0;
    for (const auto& g : d->vgroup_columns) {
      widest = std::max(widest, g.size());
    }
    std::printf("%-40s %8zu %10zu\n", vc.label, d->vgroup_columns.size(),
                widest);
  }

  std::printf("\nObserved exposure audit (one run, cap=60):\n");
  {
    core::EdgeletFramework fw2(bench::StandardFleet(500, 80, 6));
    if (!fw2.Init().ok()) return 1;
    core::PrivacyConfig privacy;
    privacy.max_tuples_per_edgelet = 60;
    auto d = fw2.Plan(bench::SurveyQuery(kC), privacy, {0.05, 0.99},
                      exec::Strategy::kOvercollection);
    if (!d.ok()) return 1;
    exec::ExecutionConfig ec;
    ec.collection_window = 2 * kMinute;
    ec.deadline = 10 * kMinute;
    ec.inject_failures = false;
    auto report = fw2.Execute(*d, ec);
    if (report.ok() && report->success) {
      auto e = core::Planner::Exposure(*d);
      std::printf("  plan-time bound : %llu tuples on one edgelet\n",
                  static_cast<unsigned long long>(e.max_tuples_per_edgelet));
      std::printf("  observed        : %llu tuples decrypted on the most "
                  "exposed enclave\n",
                  static_cast<unsigned long long>(
                      report->max_observed_exposure_tuples));
      std::printf("  (observed can exceed the bound by the contributions "
                  "that arrived after the quota and were discarded "
                  "unprocessed)\n");
    }
  }
  return 0;
}
