// FIG3 — Overcollection degree (paper Figure 3 and §2.2).
// The QEP expands from n to n+m partitions; m is the smallest value whose
// binomial survival probability meets the reliability target. Prints m as a
// function of the presumed failure probability, for several n and targets.
// Expected shape: m grows with p and with the target, stays well below n
// for realistic p (overcollection is cheap).
//
// Runs on the parallel trial harness (trial_runner.h). The sweep is
// analytic (one closed-form evaluation per grid cell, no simulation), so
// --trials is accepted but has no effect; --jobs fans the grid cells.

#include "bench_util.h"
#include "resilience/overcollection.h"
#include "trial_runner.h"

using namespace edgelet;

namespace {

// One grid cell across the four printed tables.
struct CellSpec {
  int table = 0;  // 1: m(p,n)  2: m(p,target)  3: m(p,ops)  4: backup(p,ops)
  double p = 0;
  int n = 0;
  double target = 0;
  int ops = 2;
};

int EvalCell(const CellSpec& c) {
  if (c.table == 4) {
    auto b = resilience::MinBackupReplicas(c.ops, c.p, c.target);
    return b.ok() ? *b : -1;
  }
  auto m = resilience::MinOvercollection(c.n, c.p, c.target, c.ops);
  return m.ok() ? *m : -1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::ParseHarnessOptions(
      argc, argv, "fig3_overcollection", /*default_trials=*/1);
  bench::PrintHeader(
      "FIG3: overcollection degree m = f(failure probability)",
      "Expected: m increasing in p and in the reliability target; m << n "
      "for realistic p (paper: overcollection is the cheap strategy).");

  const std::vector<double> probs = {0.01, 0.02, 0.05, 0.10,
                                     0.15, 0.20, 0.30, 0.40};
  const std::vector<int> ns = {4, 10, 20, 50, 100};
  const std::vector<double> targets = {0.9, 0.99, 0.999, 0.9999};
  const std::vector<int> ops_variants = {2, 3, 5};
  const std::vector<int> backup_ops = {9, 21, 101};

  std::vector<CellSpec> cells;
  for (double p : probs) {
    for (int n : ns) cells.push_back({1, p, n, 0.99, 2});
  }
  for (double p : probs) {
    for (double t : targets) cells.push_back({2, p, 10, t, 2});
  }
  for (double p : probs) {
    for (int ops : ops_variants) cells.push_back({3, p, 10, 0.99, ops});
  }
  for (double p : probs) {
    for (int ops : backup_ops) cells.push_back({4, p, 0, 0.99, ops});
  }

  bench::WallTimer timer;
  bench::TrialExecutor executor(opt.jobs);
  std::vector<int> values =
      executor.Map(static_cast<int>(cells.size()),
                   [&](int i) { return EvalCell(cells[i]); });

  bench::BenchJson json("fig3_overcollection", opt);
  size_t idx = 0;
  auto emit = [&](const CellSpec& c, int v) {
    json.AddRow({{"table", bench::JsonNum(c.table)},
                 {"p", bench::JsonNum(c.p)},
                 {"n", bench::JsonNum(c.n)},
                 {"target", bench::JsonNum(c.target)},
                 {"ops", bench::JsonNum(c.ops)},
                 {"m", bench::JsonNum(v)}});
  };

  std::printf("reliability target 0.99, 2 operators per partition\n");
  std::printf("%8s", "p \\ n");
  for (int n : ns) std::printf(" %7d", n);
  std::printf("\n");
  bench::PrintRule(50);
  for (double p : probs) {
    std::printf("%8.2f", p);
    for (size_t j = 0; j < ns.size(); ++j) {
      int v = values[idx];
      emit(cells[idx], v);
      ++idx;
      if (v >= 0) {
        std::printf(" %7d", v);
      } else {
        std::printf(" %7s", "-");
      }
    }
    std::printf("\n");
  }

  std::printf("\nn = 10, effect of the reliability target\n");
  std::printf("%8s %8s %8s %8s %8s\n", "p", "t=0.9", "t=0.99", "t=0.999",
              "t=0.9999");
  bench::PrintRule(50);
  for (double p : probs) {
    std::printf("%8.2f", p);
    for (size_t j = 0; j < targets.size(); ++j) {
      emit(cells[idx], values[idx]);
      std::printf(" %8d", values[idx]);
      ++idx;
    }
    std::printf("\n");
  }

  std::printf("\nn = 10, target 0.99: effect of operators per partition "
              "(1 builder + v computers)\n");
  std::printf("%8s %8s %8s %8s\n", "p", "ops=2", "ops=3", "ops=5");
  bench::PrintRule(50);
  for (double p : probs) {
    std::printf("%8.2f", p);
    for (size_t j = 0; j < ops_variants.size(); ++j) {
      emit(cells[idx], values[idx]);
      std::printf(" %8d", values[idx]);
      ++idx;
    }
    std::printf("\n");
  }

  std::printf("\nBackup-strategy replica sizing (same resiliency goal, "
              "for comparison)\n");
  std::printf("%8s %10s %10s %10s\n", "p", "ops=9", "ops=21", "ops=101");
  bench::PrintRule(50);
  for (double p : probs) {
    std::printf("%8.2f", p);
    for (size_t j = 0; j < backup_ops.size(); ++j) {
      emit(cells[idx], values[idx]);
      std::printf(" %10d", values[idx]);
      ++idx;
    }
    std::printf("\n");
  }
  json.Write(timer.ElapsedMs(), /*skipped_trials=*/0);
  return 0;
}
