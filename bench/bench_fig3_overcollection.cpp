// FIG3 — Overcollection degree (paper Figure 3 and §2.2).
// The QEP expands from n to n+m partitions; m is the smallest value whose
// binomial survival probability meets the reliability target. Prints m as a
// function of the presumed failure probability, for several n and targets.
// Expected shape: m grows with p and with the target, stays well below n
// for realistic p (overcollection is cheap).

#include "bench_util.h"
#include "resilience/overcollection.h"

using namespace edgelet;

int main() {
  bench::PrintHeader(
      "FIG3: overcollection degree m = f(failure probability)",
      "Expected: m increasing in p and in the reliability target; m << n "
      "for realistic p (paper: overcollection is the cheap strategy).");

  const std::vector<double> probs = {0.01, 0.02, 0.05, 0.10,
                                     0.15, 0.20, 0.30, 0.40};
  const std::vector<int> ns = {4, 10, 20, 50, 100};

  std::printf("reliability target 0.99, 2 operators per partition\n");
  std::printf("%8s", "p \\ n");
  for (int n : ns) std::printf(" %7d", n);
  std::printf("\n");
  bench::PrintRule(50);
  for (double p : probs) {
    std::printf("%8.2f", p);
    for (int n : ns) {
      auto m = resilience::MinOvercollection(n, p, 0.99);
      if (m.ok()) {
        std::printf(" %7d", *m);
      } else {
        std::printf(" %7s", "-");
      }
    }
    std::printf("\n");
  }

  std::printf("\nn = 10, effect of the reliability target\n");
  std::printf("%8s %8s %8s %8s %8s\n", "p", "t=0.9", "t=0.99", "t=0.999",
              "t=0.9999");
  bench::PrintRule(50);
  for (double p : probs) {
    std::printf("%8.2f", p);
    for (double target : {0.9, 0.99, 0.999, 0.9999}) {
      auto m = resilience::MinOvercollection(10, p, target);
      std::printf(" %8d", m.ok() ? *m : -1);
    }
    std::printf("\n");
  }

  std::printf("\nn = 10, target 0.99: effect of operators per partition "
              "(1 builder + v computers)\n");
  std::printf("%8s %8s %8s %8s\n", "p", "ops=2", "ops=3", "ops=5");
  bench::PrintRule(50);
  for (double p : probs) {
    std::printf("%8.2f", p);
    for (int ops : {2, 3, 5}) {
      auto m = resilience::MinOvercollection(10, p, 0.99, ops);
      std::printf(" %8d", m.ok() ? *m : -1);
    }
    std::printf("\n");
  }

  std::printf("\nBackup-strategy replica sizing (same resiliency goal, "
              "for comparison)\n");
  std::printf("%8s %10s %10s %10s\n", "p", "ops=9", "ops=21", "ops=101");
  bench::PrintRule(50);
  for (double p : probs) {
    std::printf("%8.2f", p);
    for (int ops : {9, 21, 101}) {
      auto b = resilience::MinBackupReplicas(ops, p, 0.99);
      std::printf(" %10d", b.ok() ? *b : -1);
    }
    std::printf("\n");
  }
  return 0;
}
