// ABLATE — design-choice ablations (DESIGN.md §5).
//   A1: local Lloyd iterations per heartbeat (compute/communication
//       trade-off of the local-convergence phase).
//   A2: mini-batch resampling per heartbeat vs full-partition Lloyd (the
//       paper: "resampling at each iteration sometimes even produces
//       better accuracy", citing Mini-batch K-Means).
//   A3: result re-emission count (uncertain delivery of the final answer).
//
// Runs on the parallel trial harness (trial_runner.h). All three ablations
// flatten into one trial list, so --jobs parallelizes across the whole
// bench. --trials N sets the A3 trial count (A1/A2 use min(N, 3) seeds).

#include <algorithm>

#include "bench_util.h"
#include "trial_runner.h"

using namespace edgelet;

namespace {

struct TrialSpec {
  enum Kind { kKMeans, kResend } kind = kKMeans;
  int cell = 0;  // index into the printed table the trial belongs to
  int local_iterations = 2;
  int64_t batch_size = 0;
  int resends = 0;
  uint64_t seed = 1;
};

struct TrialResult {
  bench::TrialStatus status;
  bool success = false;
  double inertia_ratio = -1;
};

TrialResult RunKm(const TrialSpec& spec) {
  TrialResult r;
  core::FrameworkConfig cfg = bench::StandardFleet(700, 60, spec.seed);
  cfg.network.drop_probability = 0.25;
  core::EdgeletFramework fw(cfg);
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  query::Query q = bench::ClusterQuery(120, 4, 70 + spec.seed);
  q.kmeans.local_iterations = spec.local_iterations;
  q.kmeans.batch_size = spec.batch_size;
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 30;
  auto d = fw.Plan(q, privacy, {0.1, 0.99}, exec::Strategy::kOvercollection);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.heartbeat_period = 20 * kSecond;
  ec.num_heartbeats = 8;
  ec.deadline = 8 * kMinute;
  ec.combiner_margin = kMinute;
  ec.inject_failures = false;
  ec.seed = spec.seed;
  auto report = fw.Execute(*d, ec);
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  if (!report->success) return r;  // completed but timed out: not skipped
  ml::Matrix distributed;
  for (const auto& row : report->result.rows()) {
    std::vector<double> c;
    for (size_t f = 0; f < q.kmeans.features.size(); ++f) {
      c.push_back(row[2 + f].AsDouble());
    }
    distributed.push_back(std::move(c));
  }
  auto central = fw.CentralizedKMeans(q);
  auto points = fw.QualifyingPoints(q);
  if (!central.ok() || !points.ok()) return r;
  auto ratio = ml::InertiaRatio(*points, distributed, central->centroids);
  if (!ratio.ok()) return r;
  r.success = true;
  r.inertia_ratio = *ratio;
  return r;
}

TrialResult RunResend(const TrialSpec& spec) {
  TrialResult r;
  core::FrameworkConfig cfg = bench::StandardFleet(700, 60, spec.seed);
  cfg.network.drop_probability = 0.5;
  core::EdgeletFramework fw(cfg);
  if (!fw.Init().ok()) {
    r.status = {true, "init"};
    return r;
  }
  query::Query q = bench::SurveyQuery(80, spec.seed);
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 20;
  auto d = fw.Plan(q, privacy, {0.1, 0.99}, exec::Strategy::kOvercollection);
  if (!d.ok()) {
    r.status = {true, "plan"};
    return r;
  }
  exec::ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.deadline = 6 * kMinute;
  ec.inject_failures = false;
  ec.result_resends = spec.resends;
  ec.seed = spec.seed;
  auto report = fw.Execute(*d, ec);
  if (!report.ok()) {
    r.status = {true, "execute"};
    return r;
  }
  r.success = report->success;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::ParseHarnessOptions(
      argc, argv, "ablation", /*default_trials=*/8);
  bench::PrintHeader(
      "ABLATE: design-choice ablations",
      "A1 expected: diminishing returns past ~2 local iterations. "
      "A2 expected: resampling stays competitive with full-batch (paper's "
      "Mini-batch claim). A3 expected: re-emission converts residual "
      "delivery losses into successes.");

  const int km_seeds = std::min(opt.trials, 3);
  const int a3_trials = opt.trials;
  const std::vector<int> kA1Iters = {1, 2, 4, 8};
  const std::vector<int64_t> kA2Batches = {0, 8, 16, 32};  // 0 = full batch
  const std::vector<int> kA3Resends = {0, 1, 2, 4};

  std::vector<TrialSpec> specs;
  int cell = 0;
  for (int iters : kA1Iters) {
    for (int s = 1; s <= km_seeds; ++s) {
      specs.push_back({TrialSpec::kKMeans, cell, iters, 0, 0,
                       static_cast<uint64_t>(s)});
    }
    ++cell;
  }
  for (int64_t batch : kA2Batches) {
    for (int s = 1; s <= km_seeds; ++s) {
      specs.push_back({TrialSpec::kKMeans, cell, 2, batch, 0,
                       static_cast<uint64_t>(s)});
    }
    ++cell;
  }
  for (int resends : kA3Resends) {
    for (int t = 0; t < a3_trials; ++t) {
      specs.push_back({TrialSpec::kResend, cell, 2, 0, resends,
                       static_cast<uint64_t>(500 + t)});
    }
    ++cell;
  }

  bench::WallTimer timer;
  bench::TrialExecutor executor(opt.jobs);
  std::vector<TrialResult> results =
      executor.Map(static_cast<int>(specs.size()), [&](int i) {
        return specs[i].kind == TrialSpec::kKMeans ? RunKm(specs[i])
                                                   : RunResend(specs[i]);
      });

  // Per-cell aggregation (results are in spec order).
  struct CellAgg {
    double ratio_sum = 0;
    int ratio_count = 0;
    int successes = 0;
    int completed = 0;
    int skipped = 0;
  };
  std::vector<CellAgg> agg(cell);
  int skipped_total = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    CellAgg& a = agg[specs[i].cell];
    if (results[i].status.skipped) {
      ++a.skipped;
      ++skipped_total;
      continue;
    }
    ++a.completed;
    if (results[i].success) {
      ++a.successes;
      if (specs[i].kind == TrialSpec::kKMeans) {
        a.ratio_sum += results[i].inertia_ratio;
        ++a.ratio_count;
      }
    }
  }
  auto mean_ratio = [&](int c) {
    return agg[c].ratio_count ? agg[c].ratio_sum / agg[c].ratio_count : -1.0;
  };

  bench::BenchJson json("ablation", opt);
  int c = 0;
  std::printf("A1 — local Lloyd iterations per heartbeat (full batch, "
              "p_drop=0.25)\n");
  std::printf("%12s %14s %8s\n", "local iters", "inertia ratio", "skipped");
  bench::PrintRule(38);
  for (int iters : kA1Iters) {
    std::printf("%12d %14.4f %8d\n", iters, mean_ratio(c), agg[c].skipped);
    json.AddRow({{"ablation", bench::JsonStr("A1_local_iterations")},
                 {"local_iterations", bench::JsonNum(iters)},
                 {"inertia_ratio", bench::JsonNum(mean_ratio(c))},
                 {"completed", bench::JsonNum(agg[c].completed)},
                 {"skipped", bench::JsonNum(agg[c].skipped)}});
    ++c;
  }

  std::printf("\nA2 — mini-batch resampling per heartbeat (p_drop=0.25, "
              "2 local iterations)\n");
  std::printf("%12s %14s %8s\n", "batch", "inertia ratio", "skipped");
  bench::PrintRule(38);
  for (int64_t batch : kA2Batches) {
    if (batch == 0) {
      std::printf("%12s %14.4f %8d\n", "full", mean_ratio(c),
                  agg[c].skipped);
    } else {
      std::printf("%12lld %14.4f %8d\n", static_cast<long long>(batch),
                  mean_ratio(c), agg[c].skipped);
    }
    json.AddRow({{"ablation", bench::JsonStr("A2_minibatch")},
                 {"batch_size", bench::JsonNum(batch)},
                 {"inertia_ratio", bench::JsonNum(mean_ratio(c))},
                 {"completed", bench::JsonNum(agg[c].completed)},
                 {"skipped", bench::JsonNum(agg[c].skipped)}});
    ++c;
  }

  std::printf("\nA3 — final-result re-emissions under 50%% message loss\n");
  std::printf("%12s %10s %8s\n", "resends", "success", "skipped");
  bench::PrintRule(38);
  for (int resends : kA3Resends) {
    int pct = agg[c].completed ? 100 * agg[c].successes / agg[c].completed : 0;
    std::printf("%12d %9d%% %8d\n", resends, pct, agg[c].skipped);
    json.AddRow({{"ablation", bench::JsonStr("A3_result_resends")},
                 {"resends", bench::JsonNum(resends)},
                 {"successes", bench::JsonNum(agg[c].successes)},
                 {"completed", bench::JsonNum(agg[c].completed)},
                 {"skipped", bench::JsonNum(agg[c].skipped)}});
    ++c;
  }
  json.Write(timer.ElapsedMs(), skipped_total);
  return 0;
}
