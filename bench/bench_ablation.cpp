// ABLATE — design-choice ablations (DESIGN.md §5).
//   A1: local Lloyd iterations per heartbeat (compute/communication
//       trade-off of the local-convergence phase).
//   A2: mini-batch resampling per heartbeat vs full-partition Lloyd (the
//       paper: "resampling at each iteration sometimes even produces
//       better accuracy", citing Mini-batch K-Means).
//   A3: result re-emission count (uncertain delivery of the final answer).

#include "bench_util.h"

using namespace edgelet;

namespace {

struct KmOutcome {
  bool success = false;
  double inertia_ratio = -1;
};

KmOutcome RunKm(int local_iterations, int64_t batch_size, double drop,
                uint64_t seed) {
  core::FrameworkConfig cfg = bench::StandardFleet(700, 60, seed);
  cfg.network.drop_probability = drop;
  core::EdgeletFramework fw(cfg);
  if (!fw.Init().ok()) return {};
  query::Query q = bench::ClusterQuery(120, 4, 70 + seed);
  q.kmeans.local_iterations = local_iterations;
  q.kmeans.batch_size = batch_size;
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 30;
  auto d = fw.Plan(q, privacy, {0.1, 0.99}, exec::Strategy::kOvercollection);
  if (!d.ok()) return {};
  exec::ExecutionConfig ec;
  ec.collection_window = 60 * kSecond;
  ec.heartbeat_period = 20 * kSecond;
  ec.num_heartbeats = 8;
  ec.deadline = 8 * kMinute;
  ec.combiner_margin = kMinute;
  ec.inject_failures = false;
  ec.seed = seed;
  auto report = fw.Execute(*d, ec);
  if (!report.ok() || !report->success) return {};
  ml::Matrix distributed;
  for (const auto& row : report->result.rows()) {
    std::vector<double> c;
    for (size_t f = 0; f < q.kmeans.features.size(); ++f) {
      c.push_back(row[2 + f].AsDouble());
    }
    distributed.push_back(std::move(c));
  }
  auto central = fw.CentralizedKMeans(q);
  auto points = fw.QualifyingPoints(q);
  if (!central.ok() || !points.ok()) return {};
  auto ratio = ml::InertiaRatio(*points, distributed, central->centroids);
  if (!ratio.ok()) return {};
  return {true, *ratio};
}

double MeanRatio(int local_iterations, int64_t batch, double drop) {
  double sum = 0;
  int done = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    KmOutcome o = RunKm(local_iterations, batch, drop, seed);
    if (o.success) {
      sum += o.inertia_ratio;
      ++done;
    }
  }
  return done ? sum / done : -1;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "ABLATE: design-choice ablations",
      "A1 expected: diminishing returns past ~2 local iterations. "
      "A2 expected: resampling stays competitive with full-batch (paper's "
      "Mini-batch claim). A3 expected: re-emission converts residual "
      "delivery losses into successes.");

  std::printf("A1 — local Lloyd iterations per heartbeat (full batch, "
              "p_drop=0.25)\n");
  std::printf("%12s %14s\n", "local iters", "inertia ratio");
  bench::PrintRule(30);
  for (int iters : {1, 2, 4, 8}) {
    std::printf("%12d %14.4f\n", iters, MeanRatio(iters, 0, 0.25));
  }

  std::printf("\nA2 — mini-batch resampling per heartbeat (p_drop=0.25, "
              "2 local iterations)\n");
  std::printf("%12s %14s\n", "batch", "inertia ratio");
  bench::PrintRule(30);
  std::printf("%12s %14.4f\n", "full", MeanRatio(2, 0, 0.25));
  for (int64_t batch : {8, 16, 32}) {
    std::printf("%12lld %14.4f\n", static_cast<long long>(batch),
                MeanRatio(2, batch, 0.25));
  }

  std::printf("\nA3 — final-result re-emissions under 50%% message loss\n");
  std::printf("%12s %10s\n", "resends", "success");
  bench::PrintRule(30);
  for (int resends : {0, 1, 2, 4}) {
    int successes = 0, trials = 8;
    for (int t = 0; t < trials; ++t) {
      core::FrameworkConfig cfg = bench::StandardFleet(700, 60, 500 + t);
      cfg.network.drop_probability = 0.5;
      core::EdgeletFramework fw(cfg);
      if (!fw.Init().ok()) continue;
      query::Query q = bench::SurveyQuery(80, 500 + t);
      core::PrivacyConfig privacy;
      privacy.max_tuples_per_edgelet = 20;
      auto d = fw.Plan(q, privacy, {0.1, 0.99},
                       exec::Strategy::kOvercollection);
      if (!d.ok()) continue;
      exec::ExecutionConfig ec;
      ec.collection_window = 60 * kSecond;
      ec.deadline = 6 * kMinute;
      ec.inject_failures = false;
      ec.result_resends = resends;
      ec.seed = 500 + t;
      auto report = fw.Execute(*d, ec);
      if (report.ok() && report->success) ++successes;
    }
    std::printf("%12d %9d%%\n", resends, 100 * successes / trials);
  }
  return 0;
}
