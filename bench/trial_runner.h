#ifndef EDGELET_BENCH_TRIAL_RUNNER_H_
#define EDGELET_BENCH_TRIAL_RUNNER_H_

// Parallel trial harness for the sweep benches.
//
// Every sweep is a list of independent, seed-deterministic trials. The
// harness fans them across a common/thread_pool.h worker pool and returns
// results in submission order, so the printed tables and the JSON output
// are identical for any --jobs value (each simulation stays
// single-threaded and bit-identical per seed; see the determinism test).
//
// Flags understood by every converted bench:
//   --jobs N     worker threads (default: hardware concurrency)
//   --trials N   trials per sweep cell (default: bench-specific)
//   --json PATH  write machine-readable results (default: BENCH_<name>.json
//                in the current directory)
//   --no-json    disable the JSON artifact
//
// JSON schema (one object per file):
//   {
//     "bench": "<name>", "jobs": N, "trials": N,
//     "wall_ms": W,            // wall-clock of the whole sweep
//     "skipped_trials": S,     // trials dropped by Init/Plan/Execute
//     "rows": [ {<cell fields>...}, ... ]
//   }

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace edgelet::bench {

struct HarnessOptions {
  int jobs = 1;
  int trials = 1;
  std::string json_path;  // empty = JSON disabled
};

// Outcome bookkeeping for one (config, seed) trial. A trial that fails
// Init/Plan/Execute is *skipped* — counted and reported, never silently
// dropped from the success-rate denominator.
struct TrialStatus {
  bool skipped = false;
  const char* skip_stage = "";  // "init" | "plan" | "execute"
};

inline HarnessOptions ParseHarnessOptions(int argc, char** argv,
                                          const char* bench_name,
                                          int default_trials) {
  HarnessOptions opt;
  opt.jobs = static_cast<int>(ThreadPool::DefaultParallelism());
  opt.trials = default_trials;
  opt.json_path = std::string("BENCH_") + bench_name + ".json";
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto positive_int = [&](const char* flag) {
      const char* text = need_value(flag);
      char* end = nullptr;
      long v = std::strtol(text, &end, 10);
      if (end == text || *end != '\0' || v < 1) {
        std::fprintf(stderr, "%s: %s expects a positive integer, got '%s'\n",
                     argv[0], flag, text);
        std::exit(2);
      }
      return static_cast<int>(v);
    };
    if (std::strcmp(argv[i], "--jobs") == 0) {
      opt.jobs = positive_int("--jobs");
    } else if (std::strcmp(argv[i], "--trials") == 0) {
      opt.trials = positive_int("--trials");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_path = need_value("--json");
    } else if (std::strcmp(argv[i], "--no-json") == 0) {
      opt.json_path.clear();
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: %s [--jobs N] [--trials N] [--json PATH | --no-json]\n"
          "  --jobs N    worker threads (default: hardware concurrency)\n"
          "  --trials N  trials per sweep cell (default: %d)\n"
          "  --json PATH machine-readable output (default: BENCH_%s.json)\n",
          argv[0], default_trials, bench_name);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s' (try --help)\n", argv[0],
                   argv[i]);
      std::exit(2);
    }
  }
  return opt;
}

// Fans fn(0..n-1) across `jobs` workers and returns the results in index
// order — deterministic output regardless of completion order. jobs <= 1
// runs inline (the true serial baseline: no pool, no futures).
class TrialExecutor {
 public:
  explicit TrialExecutor(int jobs) {
    if (jobs > 1) pool_ = std::make_unique<ThreadPool>(jobs);
  }

  template <typename Fn>
  auto Map(int n, Fn fn) -> std::vector<decltype(fn(0))> {
    using R = decltype(fn(0));
    std::vector<R> out;
    out.reserve(n);
    if (pool_ == nullptr) {
      for (int i = 0; i < n; ++i) out.push_back(fn(i));
      return out;
    }
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (int i = 0; i < n; ++i) {
      futures.push_back(pool_->Submit([&fn, i]() { return fn(i); }));
    }
    for (auto& f : futures) out.push_back(f.get());
    return out;
  }

 private:
  std::unique_ptr<ThreadPool> pool_;
};

// --- Minimal JSON emission -------------------------------------------------

inline std::string JsonStr(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

inline std::string JsonNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}
template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
inline std::string JsonNum(T v) {
  return std::to_string(v);
}
inline std::string JsonBool(bool v) { return v ? "true" : "false"; }

// Accumulates the harness JSON artifact. Field values must already be
// JSON-encoded (JsonStr/JsonNum/JsonBool).
class BenchJson {
 public:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  BenchJson(std::string bench_name, const HarnessOptions& opt)
      : bench_name_(std::move(bench_name)), opt_(opt) {}

  void AddRow(Fields fields) {
    std::string row = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) row += ", ";
      row += JsonStr(fields[i].first) + ": " + fields[i].second;
    }
    row += "}";
    rows_.push_back(std::move(row));
  }

  // Writes the artifact; on failure warns on stderr and returns false.
  // Disabled (empty path) returns true silently.
  bool Write(int64_t wall_ms, int skipped_trials) const {
    if (opt_.json_path.empty()) return true;
    std::FILE* f = std::fopen(opt_.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   opt_.json_path.c_str());
      return false;
    }
    std::fprintf(f,
                 "{\n  \"bench\": %s,\n  \"jobs\": %d,\n  \"trials\": %d,\n"
                 "  \"wall_ms\": %lld,\n  \"skipped_trials\": %d,\n"
                 "  \"rows\": [\n",
                 JsonStr(bench_name_).c_str(), opt_.jobs, opt_.trials,
                 static_cast<long long>(wall_ms), skipped_trials);
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\n[json: %s]\n", opt_.json_path.c_str());
    return true;
  }

 private:
  std::string bench_name_;
  HarnessOptions opt_;
  std::vector<std::string> rows_;
};

// Wall-clock stopwatch for the sweep's JSON record.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  int64_t ElapsedMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace edgelet::bench

#endif  // EDGELET_BENCH_TRIAL_RUNNER_H_
