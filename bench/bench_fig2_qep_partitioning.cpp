// FIG2 — Vertically and Horizontally partitioned QEP (paper Figure 2).
// Regenerates the plan shapes the demo shows while attendees turn the
// privacy knobs: the horizontal factor (max raw tuples per edgelet) and the
// vertical separation constraints, and prints the per-edgelet exposure each
// shape yields.

#include "bench_util.h"

using namespace edgelet;

int main() {
  bench::PrintHeader(
      "FIG2: QEP shapes under horizontal + vertical partitioning",
      "Expected: n = ceil(C/cap) builder/computer columns; separated "
      "attribute pairs split computers into vertical groups; exposure per "
      "edgelet = quota x group width.");

  core::EdgeletFramework fw(bench::StandardFleet(400, 120, 1));
  if (!fw.Init().ok()) return 1;
  const uint64_t kC = 200;

  struct Case {
    const char* label;
    uint64_t cap;
    std::vector<privacy::SeparationConstraint> separation;
  };
  const std::vector<Case> cases = {
      {"no partitioning", 0, {}},
      {"horizontal cap=50 (n=4)", 50, {}},
      {"horizontal cap=25 (n=8)", 25, {}},
      {"vertical only: separate {region,sex}", 0, {{"region", "sex"}}},
      {"both: cap=50 + separate {region,sex}", 50, {{"region", "sex"}}},
  };

  std::printf("%-42s %4s %4s %3s %8s %8s %9s\n", "configuration", "n", "m",
              "vg", "tuples/e", "cells/e", "frac");
  bench::PrintRule();
  for (const auto& c : cases) {
    core::PrivacyConfig privacy;
    privacy.max_tuples_per_edgelet = c.cap;
    privacy.separation = c.separation;
    resilience::ResilienceConfig resilience{0.05, 0.99};
    auto d = fw.Plan(bench::SurveyQuery(kC), privacy, resilience,
                     exec::Strategy::kOvercollection);
    if (!d.ok()) {
      std::printf("%-42s PLANNING FAILED: %s\n", c.label,
                  d.status().ToString().c_str());
      continue;
    }
    auto exposure = core::Planner::Exposure(*d);
    std::printf("%-42s %4d %4d %3zu %8llu %8llu %9.3f\n", c.label, d->n,
                d->m, d->vgroup_columns.size(),
                static_cast<unsigned long long>(
                    exposure.max_tuples_per_edgelet),
                static_cast<unsigned long long>(
                    exposure.max_cells_per_edgelet),
                exposure.worst_snapshot_fraction);
  }

  // Render one representative vertically+horizontally partitioned plan
  // (the literal Figure 2 shape).
  core::PrivacyConfig privacy;
  privacy.max_tuples_per_edgelet = 100;
  privacy.separation = {{"region", "sex"}};
  auto d = fw.Plan(bench::SurveyQuery(kC), privacy, {},
                   exec::Strategy::kOvercollection);
  if (d.ok()) {
    std::printf("\nRepresentative plan (cap=100, separate {region,sex}):\n%s",
                d->qep.ToString().c_str());
  }
  return 0;
}
